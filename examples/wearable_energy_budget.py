#!/usr/bin/env python3
"""Wearable energy budget: what XBioSiP buys at the sensor-node level (Fig. 1).

Combines the sensor-node energy model (sensing / processing / communication
per day) with the hardware energy reduction of an approximate Pan-Tompkins
processor to estimate the battery-lifetime extension of an ECG wearable.

Run with:  python examples/wearable_energy_budget.py
"""

from repro.core import DesignEvaluator, paper_configuration
from repro.energy import (
    BIO_SIGNAL_NODES,
    lifetime_extension_factor,
    software_energy_per_sample_j,
)
from repro.energy.stage_costs import accurate_stage_cost
from repro.dsp import STAGE_NAMES
from repro.signals import load_record


def main() -> None:
    # Per-day energy breakdown of the five monitored bio-signals (Fig. 1).
    print(f"{'node':<20} {'sensing[J/d]':>14} {'total[J/d]':>12} {'processing':>11}")
    for node in BIO_SIGNAL_NODES:
        print(f"{node.name:<20} {node.sensing_j_per_day:>14.2e} "
              f"{node.total_j_per_day:>12.1f} {node.processing_fraction * 100:>10.0f}%")
    print()

    # Hardware vs software execution energy (configurations A2 vs A1).
    accurate_fj = sum(accurate_stage_cost(stage).energy_fj for stage in STAGE_NAMES)
    software_j = software_energy_per_sample_j()
    print(f"accurate ASIC datapath : {accurate_fj:8.0f} fJ per sample (A2)")
    print(f"Raspberry Pi software  : {software_j:8.2e} J per sample (A1, "
          f"~{software_j / (accurate_fj * 1e-15):.0e}x higher)\n")

    # Evaluate an approximate design and translate it into battery lifetime.
    record = load_record("16483", duration_s=10.0)
    evaluator = DesignEvaluator([record])
    for name in ("B1", "B7", "B8"):
        evaluation = evaluator.evaluate(paper_configuration(name))
        ecg_node = next(n for n in BIO_SIGNAL_NODES if n.name == "ecg")
        lifetime = lifetime_extension_factor(ecg_node, evaluation.energy_reduction)
        print(f"design {name}: {evaluation.energy_reduction:5.1f}x processing-energy "
              f"reduction at {evaluation.peak_accuracy * 100:5.1f}% accuracy "
              f"-> ECG-node lifetime x{lifetime:.2f}")


if __name__ == "__main__":
    main()
