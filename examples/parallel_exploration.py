#!/usr/bin/env python3
"""Parallel, cached design-space exploration with ExplorationRuntime.

Demonstrates the execution layer behind all exploration workloads:

* a worker pool (threads here; ``executor="process"`` works the same way)
  fanning the independent design evaluations of a Table 2-style grid out in
  deterministic order,
* a persistent SQLite result cache — rerun this script and watch the second
  pass answer every design from the cache with zero pipeline runs,
* the stage graph underneath: designs sharing a settings prefix reuse each
  other's memoized intermediate signals (the per-stage reuse lines in the
  statistics report), persisted here in a SQLite signal store, and
* progress + telemetry hooks, including the measured speedup over the paper's
  ~300 s-per-evaluation serial cost model (the Fig. 11 yardstick).

Run with:  python examples/parallel_exploration.py
"""

import os
import tempfile

from repro import ExplorationRuntime, XBioSiP, load_record
from repro.core import QualityConstraint, preprocessing_design_space
from repro.runtime import SQLiteResultCache, SQLiteSignalStore


def progress(event) -> None:
    """One line per resolved design (cache hits are marked)."""
    print(f"  {event.describe()}")


def explore(runtime: ExplorationRuntime, label: str) -> None:
    constraint = QualityConstraint("psnr", 22.0)
    space = preprocessing_design_space(lsb_step=8)  # 3x3 grid for the demo
    evaluations = runtime.evaluate_many(list(space.designs()))
    feasible = [e for e in evaluations if constraint.satisfied_by(e)]
    best = max(feasible, key=lambda e: e.energy_reduction)
    print(f"{label}: best feasible design {best.summary()}")
    print(runtime.statistics().report())
    print()


def main() -> None:
    records = [load_record("16265", duration_s=10.0)]
    cache_path = os.path.join(tempfile.gettempdir(), "xbiosip-demo-cache.sqlite")
    signals_path = os.path.join(
        tempfile.gettempdir(), "xbiosip-demo-signals.sqlite"
    )

    # --- cold run: every design is evaluated on the worker pool ------------
    cold_cache = SQLiteResultCache(cache_path)
    cold_signals = SQLiteSignalStore(signals_path)
    with ExplorationRuntime(
        records,
        executor="thread",
        max_workers=4,
        cache=cold_cache,
        signal_store=cold_signals,
        progress=progress,
    ) as runtime:
        explore(runtime, "cold run")
    cold_cache.close()
    cold_signals.close()

    # --- warm run: a fresh runtime, same persistent cache ------------------
    # Results are content-addressed (design + records + library version), so
    # this run performs zero pipeline evaluations; even its accurate
    # reference runs resolve from the persistent signal store.
    warm_cache = SQLiteResultCache(cache_path)
    warm_signals = SQLiteSignalStore(signals_path)
    with ExplorationRuntime(
        records,
        executor="thread",
        max_workers=4,
        cache=warm_cache,
        signal_store=warm_signals,
    ) as runtime:
        explore(runtime, "warm run")
        print(f"warm run pipeline evaluations: {runtime.evaluation_count}")
        print(f"cache hit rate: {runtime.cache.stats.hit_rate * 100:.0f}%")
        print()

        # The same runtime drives the full methodology: Algorithm 1's
        # sequential decisions run inline, the independent resilience sweeps
        # fan out over the pool, and everything lands in the shared cache.
        result = XBioSiP(records, runtime=runtime).run()
        print(result.report())

    warm_cache.close()
    warm_signals.close()
    os.remove(cache_path)
    os.remove(signals_path)


if __name__ == "__main__":
    main()
