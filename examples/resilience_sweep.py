#!/usr/bin/env python3
"""Error-resilience analysis of every Pan-Tompkins stage (Figs. 2 and 8).

For each of the five stages, sweeps the number of approximated output LSBs
(ApproxAdd5 + AppMultV1, all other stages accurate) and prints the hardware
reductions next to the signal quality and the end-to-end peak-detection
accuracy — the per-stage trade-off curves that feed the design generation
methodology.

Run with:  python examples/resilience_sweep.py
"""

from repro.core import DesignEvaluator, analyze_stage_resilience
from repro.dsp import STAGE_NAMES
from repro.signals import load_record


def main() -> None:
    record = load_record("16272", duration_s=12.0)
    evaluator = DesignEvaluator([record])
    print(f"record {record.name}: {record.beat_count} beats in {record.duration_s:.0f} s\n")

    for stage in STAGE_NAMES:
        profile = analyze_stage_resilience(stage, evaluator)
        print(f"=== {stage} ===")
        print(f"{'LSBs':>5} {'energy':>8} {'area':>8} {'power':>8} "
              f"{'SSIM':>7} {'accuracy':>9}")
        for point in profile.points:
            print(f"{point.lsbs:>5} {point.energy_reduction:>7.1f}x "
                  f"{point.area_reduction:>7.1f}x {point.power_reduction:>7.1f}x "
                  f"{point.ssim_value:>7.3f} {point.peak_accuracy * 100:>8.1f}%")
        threshold = profile.error_resilience_threshold()
        print(f"error-resilience threshold: {threshold} LSBs "
              f"(max energy reduction at 100% accuracy: "
              f"{profile.max_energy_reduction():.1f}x)\n")


if __name__ == "__main__":
    main()
