#!/usr/bin/env python3
"""Quickstart: run the XBioSiP methodology end to end.

Loads a synthetic NSRDB-like ECG record, runs the accurate Pan-Tompkins
pipeline as a baseline, then lets the XBioSiP methodology pick an approximate
processing-unit configuration that keeps 100% peak-detection accuracy while
maximising the hardware energy reduction.

Run with:  python examples/quickstart.py
"""

from repro import XBioSiP, PanTompkinsPipeline, load_record
from repro.core import QualityConstraint
from repro.dsp import total_group_delay_samples
from repro.metrics import match_peaks


def main() -> None:
    # 1. A 15-second ECG excerpt with known R-peak annotations.
    record = load_record("16265", duration_s=15.0)
    print(f"record {record.name}: {record.duration_s:.0f} s, "
          f"{record.beat_count} beats, {record.mean_heart_rate_bpm():.0f} bpm")

    # 2. Accurate baseline: the pipeline must find every annotated beat.
    baseline = PanTompkinsPipeline().process(record.samples)
    matching = match_peaks(record.r_peak_indices, baseline.peak_indices,
                           tolerance_samples=40,
                           expected_delay_samples=total_group_delay_samples())
    print(f"accurate pipeline: {baseline.peak_count} peaks detected "
          f"(sensitivity {matching.sensitivity * 100:.0f}%)")

    # 3. XBioSiP: two-stage quality evaluation + three-phase design generation.
    #    The pre-processing constraint is the calibrated equivalent of the
    #    paper's PSNR >= 15 dB (see EXPERIMENTS.md); the final constraint is
    #    zero loss in peak-detection accuracy.
    methodology = XBioSiP(
        [record],
        preprocessing_constraint=QualityConstraint("psnr", 22.0),
    )
    result = methodology.run()

    print()
    print(result.report())
    print()
    print("per-stage approximation of the selected design:")
    for stage, lsbs in result.final_design.lsbs_map().items():
        print(f"  {stage:<24} {lsbs:>2} output LSBs approximated")


if __name__ == "__main__":
    main()
