#!/usr/bin/env python3
"""Approximate QRS detection: quality vs energy of the Fig. 12 configurations.

Evaluates the paper's named hardware configurations (A2, B1..B14) on several
synthetic NSRDB-like records, prints the energy-quality table, and runs the
heartbeat-misclassification analysis (Fig. 13) on the most interesting design.

Run with:  python examples/approximate_peak_detection.py
"""

from repro.core import (
    DesignEvaluator,
    analyze_misclassifications,
    paper_configuration,
    paper_configuration_names,
    pareto_front,
)
from repro.signals import load_record


def main() -> None:
    records = [load_record(name, duration_s=10.0) for name in ("16265", "16272", "16420")]
    evaluator = DesignEvaluator(records)
    total_beats = sum(record.beat_count for record in records)
    print(f"{len(records)} records, {total_beats} annotated beats\n")

    evaluations = []
    print(f"{'config':<8} {'accuracy':>9} {'energy':>8} {'PSNR':>7}  per-stage LSBs")
    for name in paper_configuration_names():
        evaluation = evaluator.evaluate(paper_configuration(name))
        evaluations.append(evaluation)
        lsbs = "/".join(str(v) for v in evaluation.design.lsbs_map().values())
        print(f"{name:<8} {evaluation.peak_accuracy * 100:>8.1f}% "
              f"{evaluation.energy_reduction:>7.1f}x {min(evaluation.psnr_db, 99.9):>6.1f}  {lsbs}")

    print("\nPareto-optimal designs (accuracy vs energy reduction):")
    for evaluation in pareto_front(evaluations):
        print(f"  {evaluation.summary()}")

    # Fig. 13: why does an aggressive design miss beats?
    design = paper_configuration("B10")
    print(f"\nmisclassification analysis of {design.name}:")
    for record in records:
        report = analyze_misclassifications(record, design)
        print(f"  {report.summary()}")


if __name__ == "__main__":
    main()
