"""End-to-end round trip through the job-orchestration service.

Starts ``python -m repro serve`` as a real subprocess on a free port, submits
a small exploration job through :class:`repro.service.ServiceClient`, polls
it to completion over the long-poll events endpoint, and asserts the result
is bit-identical to running the same exploration directly on an
:class:`repro.runtime.ExplorationRuntime` — the CI gate for the service
layer, and a template for driving the service from scripts.

Run with::

    PYTHONPATH=src python examples/service_roundtrip.py
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.core import QualityConstraint  # noqa: E402
from repro.runtime import ExplorationRuntime  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.jobs import execute_explore  # noqa: E402
from repro.signals import load_record  # noqa: E402

RECORD = "16265"
DURATION_S = 4.0
MAX_DESIGNS = 4


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def main() -> int:
    port = free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--records", RECORD,
            "--duration", str(DURATION_S),
            "--executor", "serial",
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    client = ServiceClient("127.0.0.1", port, timeout=30.0)
    try:
        # Wait for the server to come up.
        for _ in range(100):
            try:
                health = client.healthz()
                break
            except OSError:
                if server.poll() is not None:
                    print(server.stdout.read())
                    raise SystemExit("server exited before becoming healthy")
                time.sleep(0.2)
        else:
            raise SystemExit("server never became healthy")
        print(f"server healthy on port {port}: {health}")

        # Submit a small exploration job and follow it to completion.
        submission = client.submit_explore(max_designs=MAX_DESIGNS)
        job_id = submission["job"]["id"]
        print(f"submitted exploration job {job_id}")
        job = client.wait(job_id, timeout=600)
        print(f"job {job_id} finished: {job['state']}")
        assert job["state"] == "succeeded", job
        served = job["result"]

        # Ground truth: the same exploration, directly on the runtime.
        record = load_record(RECORD, duration_s=DURATION_S)
        with ExplorationRuntime([record], executor="serial") as runtime:
            direct = execute_explore(
                runtime, QualityConstraint("psnr", 15.0), max_designs=MAX_DESIGNS
            )
        assert served == direct, "service result differs from the direct run"
        print(
            f"service result is bit-identical to the direct runtime run "
            f"({served['designs_evaluated']} designs, "
            f"{served['feasible']} feasible)"
        )

        stats = client.stats()
        print(f"service stats: {stats['jobs']}")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
