"""Live chunked round trip through the streaming job API.

Starts ``python -m repro serve`` as a real subprocess on a free port, opens a
server-replay ``stream`` job, follows its per-chunk telemetry over the SSE
events endpoint, then drives a second session in client-push mode — and
asserts both beat lists are bit-identical to the offline
:class:`repro.dsp.pan_tompkins.PanTompkinsPipeline` run on the concatenated
signal.  The CI gate for the streaming subsystem, and a template for feeding
live sensors into the service.

Run with::

    PYTHONPATH=src python examples/stream_session.py
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

import numpy as np  # noqa: E402

from repro.core.configurations import paper_configuration  # noqa: E402
from repro.dsp.pan_tompkins import PanTompkinsPipeline  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.signals import load_record  # noqa: E402

RECORD = "16265"
DURATION_S = 6.0
CONFIG = "B6"
CHUNK_SAMPLES = 50


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def main() -> int:
    # Ground truth: the offline pipeline on the whole signal.
    record = load_record(RECORD, duration_s=DURATION_S)
    design = paper_configuration(CONFIG)
    offline = PanTompkinsPipeline(backends=design.backends()).process(
        record.samples
    )
    offline_beats = list(offline.detection.peak_indices)
    print(
        f"offline reference: {len(offline_beats)} beats on {RECORD} "
        f"({DURATION_S:.0f} s, {CONFIG})"
    )

    port = free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--records", RECORD,
            "--duration", str(DURATION_S),
            "--executor", "serial",
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    client = ServiceClient("127.0.0.1", port, timeout=30.0)
    try:
        for _ in range(100):
            try:
                client.healthz()
                break
            except OSError:
                if server.poll() is not None:
                    print(server.stdout.read())
                    raise SystemExit("server exited before becoming healthy")
                time.sleep(0.2)
        else:
            raise SystemExit("server never became healthy")
        print(f"server healthy on port {port}")

        # --- session 1: server-side replay, followed live over SSE -------
        submission = client.submit_stream(
            record=RECORD,
            design={"config": CONFIG},
            duration_s=DURATION_S,
            chunk_samples=CHUNK_SAMPLES,
        )
        job_id = submission["job"]["id"]
        print(f"replay stream job {job_id} opened, following SSE ...")
        chunk_events = 0
        last = None
        for event in client.events_stream(job_id, timeout=120.0):
            if event.get("type") == "chunk":
                chunk_events += 1
                last = event
            elif event.get("type") == "end":
                print(f"SSE end frame: state={event['state']}")
        assert last is not None, "no chunk telemetry arrived over SSE"
        print(
            f"followed {chunk_events} chunk events; last: "
            f"{last['total_samples']} samples, {last['beat_count']} beats, "
            f"hr={last['heart_rate_bpm']}"
        )
        job = client.job(job_id)
        assert job["state"] == "succeeded", job
        assert job["result"]["beats"] == offline_beats, (
            "replay stream beats differ from the offline pipeline"
        )
        print("replay session beats are bit-identical to the offline run")

        # --- session 2: client-push chunks over POST /jobs/{id}/chunks ---
        submission = client.submit_stream(
            record=RECORD,
            design={"config": CONFIG},
            source="push",
            duration_s=DURATION_S,
            idle_timeout_s=30.0,
        )
        job_id = submission["job"]["id"]
        samples = np.asarray(record.samples, dtype=np.int64)
        for lo in range(0, samples.size, CHUNK_SAMPLES):
            client.push_chunk(job_id, samples[lo : lo + CHUNK_SAMPLES].tolist())
        client.push_chunk(job_id, [], final=True)
        print(
            f"push stream job {job_id}: fed {samples.size} samples in "
            f"{-(-samples.size // CHUNK_SAMPLES)} chunks"
        )
        job = client.wait(job_id, timeout=120)
        assert job["state"] == "succeeded", job
        assert job["result"]["beats"] == offline_beats, (
            "push stream beats differ from the offline pipeline"
        )
        print("push session beats are bit-identical to the offline run")

        stats = client.stats()
        print(f"service stats: {stats['jobs']}")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
