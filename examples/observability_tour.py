"""Tour of the observability subsystem: spans, metrics, exports.

Runs the paper's Fig. 12 sweep (cold, then warm) and a live streaming
session with tracing enabled, then shows what the :mod:`repro.obs` layer
captured: the five slowest spans, a digest of the metric registry, the
Prometheus rendering a scraper would pull from ``GET /metrics``, and a
Chrome ``trace_event`` file for ``chrome://tracing`` / Perfetto.

Self-checking (CI runs it): every instrumented layer must actually have
reported — runtime batches, stage-graph resolutions, cache tiers, streamed
chunks and spans of each flavour.

Run with::

    PYTHONPATH=src python examples/observability_tour.py
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

import numpy as np  # noqa: E402

from repro.core import paper_configuration, paper_configuration_names  # noqa: E402
from repro.obs import (  # noqa: E402
    configure_tracing,
    get_registry,
    get_tracer,
    render_digest,
)
from repro.runtime import ExplorationRuntime  # noqa: E402
from repro.signals import load_record  # noqa: E402
from repro.streaming import StreamSession  # noqa: E402

RECORD = "16265"
DURATION_S = 8.0
CHUNK_SAMPLES = 50
TRACE_PATH = os.path.join(
    REPO_ROOT, "benchmarks", "results", "observability_tour_trace.json"
)


def main() -> int:
    configure_tracing(enabled=True, capacity=65536)
    tracer = get_tracer()
    registry = get_registry()

    # --- 1. the Fig. 12 sweep, cold then warm ---------------------------
    record = load_record(RECORD, duration_s=DURATION_S)
    designs = [
        paper_configuration(name)
        for name in paper_configuration_names()
        if name == "A2" or name.startswith("B")
    ]
    with ExplorationRuntime([record], executor="serial") as runtime:
        runtime.evaluate_many(designs)  # cold: every stage node computes
        runtime.evaluate_many(designs)  # warm: served from the result cache
        print(
            f"swept {len(designs)} Fig. 12 designs twice (cold + warm) on "
            f"{RECORD} ({DURATION_S:g} s)"
        )

        # --- 2. a live streaming session --------------------------------
        session = StreamSession(
            design=paper_configuration("B6"),
            sample_rate_hz=record.sample_rate_hz,
            true_peaks=record.r_peak_indices,
        )
        samples = np.asarray(record.samples, dtype=np.int64)
        for lo in range(0, samples.size, CHUNK_SAMPLES):
            session.push(samples[lo : lo + CHUNK_SAMPLES])
        result = session.finalize()
        print(
            f"streamed {session.chunk_count} chunks: "
            f"{len(result.detection.peak_indices)} beats detected"
        )

    # --- 3. what the tracer saw -----------------------------------------
    print("\nslowest spans")
    print("-------------")
    for record_ in tracer.top_spans(5):
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(record_["attrs"].items())
        )
        print(
            f"  {record_['duration_s'] * 1e3:9.3f} ms  "
            f"{record_['name']:<24} {attrs}"
        )

    # --- 4. what the registry saw ---------------------------------------
    print("\nmetrics digest")
    print("--------------")
    for line in render_digest(registry):
        print(f"  {line}")

    print("\nGET /metrics excerpt (Prometheus text exposition)")
    print("-------------------------------------------------")
    exposition = registry.render_prometheus()
    for line in exposition.splitlines():
        if ("stage_resolve" in line or "designs_resolved" in line) and (
            "_bucket{" not in line
        ):
            print(f"  {line}")

    # --- 5. Chrome trace export -----------------------------------------
    os.makedirs(os.path.dirname(TRACE_PATH), exist_ok=True)
    tracer.write_chrome_trace(TRACE_PATH)
    print(
        f"\nwrote {len(tracer.spans())} spans to {TRACE_PATH}\n"
        "open it in chrome://tracing or https://ui.perfetto.dev"
    )

    # --- self-checks: every instrumented layer reported -----------------
    span_names = {record_["name"] for record_ in tracer.spans()}
    assert {"runtime.evaluate_many", "runtime.evaluate", "stage.compute",
            "stream.chunk"} <= span_names, span_names
    snapshot = registry.snapshot()

    def series(name: str, **labels: str) -> float:
        for sample in snapshot[name]["samples"]:
            if all(sample["labels"].get(k) == v for k, v in labels.items()):
                return sample.get("value", sample.get("count", 0.0))
        return 0.0

    assert series("repro_designs_resolved_total", source="computed") >= len(designs)
    assert series("repro_designs_resolved_total", source="cache") >= len(designs)
    assert series("repro_evaluate_batch_seconds") >= 2
    assert series("repro_stage_resolve_seconds", result="miss") >= 1
    assert series("repro_cache_ops_total", tier="result_cache", op="hits") >= 1
    assert series("repro_stream_chunk_seconds") >= session.chunk_count
    assert series("repro_lut_tables") >= 1  # B6 compiles approximate LUTs
    assert tracer.info()["finished"] >= len(tracer.spans())
    print("self-checks passed: all instrumented layers reported")
    return 0


if __name__ == "__main__":
    sys.exit(main())
