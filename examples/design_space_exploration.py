#!/usr/bin/env python3
"""Design-space exploration of the pre-processing stages (Table 2 / Fig. 11).

Compares the paper's three exploration strategies on the LPF + HPF design
space:

* the exhaustive 9x9 grid (every LSB combination, shared ApproxAdd5/AppMultV1),
* the best feasible design it contains (the "heuristic" baseline), and
* the three-phase design generation methodology (Algorithm 1), which reaches
  a comparable design while evaluating only a handful of points.

Run with:  python examples/design_space_exploration.py
"""

from repro.core import (
    DesignEvaluator,
    QualityConstraint,
    analyze_stage_resilience,
    compare_strategies,
    exhaustive_search,
    generate_design,
    pareto_front,
    preprocessing_design_space,
)
from repro.signals import load_record


def main() -> None:
    record = load_record("16265", duration_s=10.0)
    evaluator = DesignEvaluator([record])
    constraint = QualityConstraint("psnr", 22.0)

    # --- exhaustive / heuristic baseline -----------------------------------
    space = preprocessing_design_space(lsb_step=4)  # 5x5 grid for a quick demo
    evaluations = exhaustive_search(space, evaluator, constraint)
    feasible = [e for e in evaluations if constraint.satisfied_by(e)]
    best = max(feasible, key=lambda e: e.energy_reduction)
    print(f"exhaustive grid: {len(evaluations)} designs evaluated, "
          f"{len(feasible)} satisfy {constraint}")
    print(f"best grid design: {best.summary()}\n")

    print("Pareto front (accuracy vs energy) of the grid:")
    for evaluation in pareto_front(evaluations):
        print(f"  {evaluation.summary()}")
    print()

    # --- Algorithm 1 --------------------------------------------------------
    profiles = {
        "low_pass": analyze_stage_resilience("lpf", evaluator),
        "high_pass": analyze_stage_resilience("hpf", evaluator),
    }
    evaluator.reset_counter()
    result = generate_design(profiles, evaluator, constraint,
                             stages=("low_pass", "high_pass"))
    print(f"Algorithm 1 evaluated {result.trace.evaluated_designs} designs "
          f"and selected: {result.design.summary()}")
    print(f"  energy reduction {result.energy_reduction:.1f}x, "
          f"PSNR {result.evaluation.psnr_db:.1f} dB\n")

    # --- exploration-time comparison ----------------------------------------
    comparison = compare_strategies(
        heuristic_space=preprocessing_design_space(),
        algorithm1_evaluations=result.trace.evaluated_designs,
    )
    for name, estimate in comparison.items():
        print(f"{name:>11}: {estimate.evaluations:>12} evaluations "
              f"(~{estimate.duration_hours:.1f} h at 300 s/evaluation)")
    speedup = comparison["algorithm1"].speedup_over(comparison["heuristic"])
    print(f"\nAlgorithm 1 is {speedup:.1f}x faster than the heuristic enumeration "
          f"(paper: ~23.6x)")


if __name__ == "__main__":
    main()
